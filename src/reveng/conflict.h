// The paper's timing-probe algorithms (§5.1 / Appendix A.1):
//
//   Algorithm 1 — IsDramBankConflicted: refresh L2, issue two loads
//                 back-to-back, flag a conflict when latency exceeds the
//                 calibrated threshold.
//   Algorithm 2 — FindCacheConflictAddrs: binary-search the minimum
//                 interval (Addr, End] whose pointer-chase evicts Addr
//                 from L2; End is an L2-set-conflicting address.
//   Algorithm 3 — (in ChannelMarker) label the channel of an address by
//                 refreshing one channel's cachelines and re-timing.
//
// Thresholds are calibrated from measured latency distributions the way
// Mei & Chu's micro-benchmarks do [30] — no simulator constants leak in.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "reveng/probe_arena.h"

namespace sgdrc::reveng {

struct CalibrationResult {
  TimeNs l2_hit_ns = 0;         // observed hit latency
  TimeNs l2_miss_ns = 0;        // observed miss latency (mode)
  TimeNs l2_miss_threshold = 0; // midpoint classifier
  TimeNs pair_baseline_ns = 0;  // typical non-conflicted pair latency
  TimeNs bank_conflict_threshold = 0;
};

class ConflictProber {
 public:
  explicit ConflictProber(ProbeArena& arena) : arena_(arena) {}

  /// Measure latency clusters and derive thresholds. Must be called before
  /// any probe. The pair threshold is found by the largest-gap split of a
  /// random-pair latency sample (conflicts are the rare upper cluster).
  CalibrationResult calibrate(size_t pair_samples = 4096, uint64_t seed = 1);

  const CalibrationResult& calibration() const { return cal_; }

  /// Algorithm 1. Both addresses must lie inside the arena.
  bool is_dram_bank_conflicted(gpusim::PhysAddr a0, gpusim::PhysAddr a1);

  /// Scan physical partitions after `addr` until `need` DRAM-bank-conflict
  /// addresses are found (Algorithm 3 step 1). `scan_limit` bounds the
  /// number of candidate partitions inspected.
  std::vector<gpusim::PhysAddr> find_dram_conflict_addrs(
      gpusim::PhysAddr addr, size_t need, uint64_t scan_limit = 2'000'000);

  /// Algorithm 2 inner test: pointer-chase the cachelines in (addr, end]
  /// after touching addr, then re-time addr. True iff addr was evicted.
  bool is_cacheline_evicted(gpusim::PhysAddr addr, gpusim::PhysAddr end);

  /// Algorithm 2: collect up to `max_iter` distinct L2-conflicting
  /// addresses for `addr` by repeated binary search.
  std::vector<gpusim::PhysAddr> find_cache_conflict_addrs(
      gpusim::PhysAddr addr, size_t max_iter = 8);

  /// Algorithm 3 primitive: does reading `fill` evict `addr` from L2?
  /// (read addr → read every fill line → re-time addr).
  bool fill_evicts(gpusim::PhysAddr addr,
                   const std::vector<gpusim::PhysAddr>& fill);

  /// Refresh (invalidate) the entire L2.
  ///
  /// On hardware this is a pointer-chase over a >L2-sized buffer; the
  /// simulator exposes an O(1) epoch flush with identical observable
  /// semantics (every previously resident line subsequently misses).
  /// `reveng_test.cc` verifies the equivalence against the real p-chase.
  void refresh_l2();

  /// The slow-but-faithful refresh used by the equivalence test.
  void refresh_l2_via_pchase();

  uint64_t probe_count() const { return probes_; }

 private:
  TimeNs timed_read(gpusim::PhysAddr pa);

  ProbeArena& arena_;
  CalibrationResult cal_;
  bool calibrated_ = false;
  uint64_t probes_ = 0;
};

}  // namespace sgdrc::reveng
