#!/usr/bin/env python3
"""sgdrc-lint: project linter for the determinism contract (stdlib only).

The repo's core promise — bit-identical results across seeds, engines,
and thread counts (docs/determinism.md) — rests on rules the C++
compiler never checks: no wall clock, no unseeded randomness, no
iteration-order-dependent containers, shard-safe RNG streams. This tool
encodes those rules as named, individually suppressible checks so a
violation fails at analysis time (the `sgdrc_lint` ctest and the CI
static-analysis job), not in a nightly TSan run three PRs later.

Checks (see docs/static-analysis.md for the full catalog):

  wall-clock            no wall-clock / OS-time reads in simulation or
                        test code (std::chrono system/steady/high_res
                        clocks, time(), gettimeofday, clock_gettime,
                        rdtsc). Bench mains that *measure the machine*
                        (events/sec throughput) suppress per file.
  raw-rand              no randomness outside common/rng.h: bans
                        rand()/srand, std::random_device, the <random>
                        header and its engines, drand48, getrandom,
                        /dev/urandom.
  unordered-container   std::unordered_{map,set,multimap,multiset} are
                        banned outright — their iteration order is
                        load-factor- and libstdc++-version-dependent,
                        so one innocent range-for breaks bit-identity.
  pointer-key           ordered containers keyed by pointer (std::map<T*,
                        std::set<T*>, …) — ordered by allocation
                        address, i.e. by ASLR.
  rng-seed-literal      constructing an Rng (or deriving a stream via
                        splitmix64) from a bare integer literal in src/:
                        every stream's salt must be a named k…Salt/
                        k…Seed constant so docs/determinism.md can list
                        it (the front-door kFrontDoorSalt pattern).
  using-namespace-header  `using namespace` in a header leaks into every
                        includer; ADL surprises have broken tie-break
                        determinism elsewhere.
  pragma-once           every header carries `#pragma once`.

Suppression syntax (the check stays visible at the use site):

  // sgdrc-lint: allow(check-name)        this line or the next line
  // sgdrc-lint: allow-file(check-name)   anywhere: the whole file

Usage: tools/sgdrc_lint.py [REPO_ROOT] [--list-checks]
(exit 0 = clean, 1 = findings, 2 = usage error)
"""

import pathlib
import re
import sys

# Directories scanned, relative to the repo root. tools/ is Python and
# out of scope; build trees are never scanned.
SCAN_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = {".h", ".cc", ".cpp"}

SUPPRESS_LINE_RE = re.compile(r"sgdrc-lint:\s*allow\(([\w,\s-]+)\)")
SUPPRESS_FILE_RE = re.compile(r"sgdrc-lint:\s*allow-file\(([\w,\s-]+)\)")


class Check:
    """One named rule: a regex over comment-stripped code lines."""

    def __init__(self, name, dirs, pattern, message, files=None,
                 exclude_files=None):
        self.name = name
        self.dirs = dirs            # top-level dirs the check applies to
        self.re = re.compile(pattern)
        self.message = message
        self.files = files          # restrict to these rel paths (regex)
        self.exclude_files = exclude_files or set()

    def applies_to(self, rel):
        top = rel.split("/", 1)[0]
        if top not in self.dirs:
            return False
        if str(rel) in self.exclude_files:
            return False
        if self.files is not None and not re.match(self.files, rel):
            return False
        return True


CHECKS = [
    Check(
        "wall-clock",
        dirs=("src", "tests", "bench", "examples"),
        pattern=(r"system_clock|steady_clock|high_resolution_clock|"
                 r"\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|"
                 r"\bgmtime\b|__rdtsc|\bmktime\b|"
                 r"\btime\s*\(\s*(NULL|nullptr|0|&)|"
                 r"std::time\b|\bclock\s*\(\s*\)"),
        message=("wall-clock read — simulated time comes from "
                 "EventQueue::now(); bench mains measuring machine "
                 "throughput suppress with allow-file(wall-clock)"),
    ),
    Check(
        "raw-rand",
        dirs=("src", "tests", "bench", "examples"),
        pattern=(r"\brand\s*\(\s*\)|\bsrand\b|random_device|"
                 r"std::mt19937|minstd_rand|default_random_engine|"
                 r"ranlux\d+|\bdrand48\b|\blrand48\b|\bgetrandom\b|"
                 r"/dev/u?random|#\s*include\s*<random>"),
        message=("randomness outside common/rng.h — derive a seeded "
                 "stream (Rng / splitmix64) so runs reproduce "
                 "bit-for-bit"),
    ),
    Check(
        "unordered-container",
        dirs=("src", "tests", "bench", "examples"),
        pattern=(r"std::unordered_(map|set|multimap|multiset)\b|"
                 r"#\s*include\s*<unordered_(map|set)>"),
        message=("std::unordered_* is banned — iteration order depends "
                 "on load factor and libstdc++ version; use std::map / "
                 "std::set / a sorted vector"),
    ),
    Check(
        "pointer-key",
        dirs=("src", "tests", "bench", "examples"),
        pattern=r"std::(map|set|multimap|multiset)\s*<\s*(const\s+)?[\w:]+\s*\*",
        message=("ordered container keyed by pointer — ordered by "
                 "allocation address (ASLR), not by anything "
                 "reproducible; key by a stable id instead"),
    ),
    Check(
        "rng-seed-literal",
        dirs=("src",),
        pattern=(r"\bRng\s+\w+\s*[({][^)}]*\b(?:0x[0-9A-Fa-f]+|\d{2,}\b)|"
                 r"\bRng\s*[({][^)}]*\b(?:0x[0-9A-Fa-f]+|\d{2,}\b)|"
                 r"\bsplitmix64\s*\([^)]*\b0x[0-9A-Fa-f]{8,}"),
        message=("RNG stream derived from a bare literal — name the salt "
                 "(constexpr uint64_t kFooSalt = …) so "
                 "docs/determinism.md can list the stream"),
        exclude_files={"src/common/rng.h"},  # defines the default seed
    ),
    Check(
        "using-namespace-header",
        dirs=("src", "bench", "tests", "examples"),
        pattern=r"^\s*using\s+namespace\b",
        message="`using namespace` in a header leaks into every includer",
        files=r".*\.h$",
    ),
]

# A named k…Salt/k…Seed constant in the expression satisfies
# rng-seed-literal: the literal is the *definition* of the named salt.
NAMED_SALT_RE = re.compile(r"\bk\w*(Salt|Seed)\w*\b|constexpr")


def strip_code(line):
    """Remove string/char literals and // comments so prose never trips
    a pattern. Block comments are handled by the caller's state."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)  # keep the delimiter so regexes don't join text
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # // comment: rest of line is prose
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path, rel, checks):
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    findings = []

    # File-level suppressions and line-level allows come from the RAW
    # text (they live in comments).
    file_allow = set()
    for m in SUPPRESS_FILE_RE.finditer(text):
        file_allow.update(x.strip() for x in m.group(1).split(","))

    line_allow = {}  # lineno -> set of check names (covers self + next)
    for i, raw in enumerate(lines, 1):
        m = SUPPRESS_LINE_RE.search(raw)
        if m:
            names = {x.strip() for x in m.group(1).split(",")}
            line_allow.setdefault(i, set()).update(names)
            line_allow.setdefault(i + 1, set()).update(names)

    applicable = [c for c in checks if c.applies_to(rel)]

    if rel.endswith(".h") and "pragma-once" not in file_allow:
        if not any(l.strip().startswith("#pragma once") for l in lines):
            findings.append((rel, 1, "pragma-once",
                             "header without #pragma once"))

    in_block_comment = False
    for i, raw in enumerate(lines, 1):
        line = raw
        # Strip /* … */ block comments (line-granular state machine).
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        code = strip_code(line)
        if not code.strip():
            continue
        for c in applicable:
            if c.name in file_allow or c.name in line_allow.get(i, set()):
                continue
            m = c.re.search(code)
            if not m:
                continue
            if c.name == "rng-seed-literal" and NAMED_SALT_RE.search(code):
                continue  # the literal is the named salt's definition
            findings.append((rel, i, c.name, c.message))
    return findings


def main(argv):
    args = [a for a in argv[1:]]
    if "--list-checks" in args:
        print("sgdrc-lint checks (suppress with "
              "// sgdrc-lint: allow(<name>) or allow-file(<name>)):")
        for c in CHECKS:
            print(f"  {c.name:24s} [{', '.join(c.dirs)}] {c.message}")
        print(f"  {'pragma-once':24s} [all headers] "
              "header without #pragma once")
        return 0
    roots = [a for a in args if not a.startswith("--")]
    if len(roots) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    root = pathlib.Path(roots[0]) if roots else \
        pathlib.Path(__file__).resolve().parent.parent
    root = root.resolve()

    files = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        files.extend(p for p in sorted(base.rglob("*"))
                     if p.suffix in EXTENSIONS and p.is_file())
    if not files:
        print(f"sgdrc-lint: no sources under {root}", file=sys.stderr)
        return 2

    findings = []
    for p in files:
        rel = p.relative_to(root).as_posix()
        findings.extend(lint_file(p, rel, CHECKS))

    if findings:
        print(f"SGDRC-LINT FAILED ({len(findings)} finding(s) across "
              f"{len(files)} files):")
        for rel, lineno, name, message in findings:
            print(f"  {rel}:{lineno}: [{name}] {message}")
        print("\nsuppress a deliberate use with "
              "// sgdrc-lint: allow(<check>) on or above the line, or "
              "allow-file(<check>) for a whole file "
              "(docs/static-analysis.md).")
        return 1
    print(f"sgdrc-lint passed: {len(files)} files, "
          f"{len(CHECKS) + 1} checks, no findings")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
