#!/usr/bin/env python3
"""Run clang-tidy over src/ and fail on findings not in the baseline.

Wraps clang-tidy (config: the committed .clang-tidy) the way CI and the
`clang_tidy` ctest consume it:

  * discovers the binary (--clang-tidy=PATH, $CLANG_TIDY, then versioned
    names on PATH). When absent — e.g. a gcc-only container — prints a
    SKIP line and exits 0 so local tier-1 runs don't require LLVM.
    CI passes --require so a broken install fails loudly instead.
  * needs a compile database: point --build-dir at a tree configured
    with CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default CMakeLists does).
  * normalises findings to `relpath:line:col: check` and compares the
    set against tools/clang_tidy_baseline.txt. The committed baseline
    is EMPTY — the tree is clean — so any finding is a regression.
    A finding listed in the baseline but no longer emitted is reported
    as stale (fix the baseline; it should only ever shrink).
  * --update-baseline rewrites the baseline from the current run, for
    the rare case where a check is newly enabled with known debt.

Usage: tools/run_clang_tidy.py [--build-dir DIR] [--require]
                               [--clang-tidy PATH] [--update-baseline]
                               [-j N]
(exit 0 = clean or skipped, 1 = new findings, 2 = usage/tool error)
"""

import argparse
import concurrent.futures
import os
import pathlib
import re
import shutil
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = ROOT / "tools" / "clang_tidy_baseline.txt"

# file:line:col: warning: message [check-name]
FINDING_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+.*\[(?P<check>[\w.,-]+)\]\s*$")

CANDIDATE_NAMES = ["clang-tidy"] + [
    f"clang-tidy-{v}" for v in range(21, 13, -1)]


def find_binary(explicit):
    if explicit:
        if shutil.which(explicit) or pathlib.Path(explicit).is_file():
            return explicit
        print(f"run_clang_tidy: --clang-tidy={explicit} not found",
              file=sys.stderr)
        return None
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    for name in CANDIDATE_NAMES:
        if shutil.which(name):
            return name
    return None


def load_baseline():
    if not BASELINE.is_file():
        return set()
    entries = set()
    for raw in BASELINE.read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            entries.add(line)
    return entries


def normalise(path_str):
    p = pathlib.Path(path_str)
    try:
        return p.resolve().relative_to(ROOT).as_posix()
    except ValueError:
        return p.as_posix()


def tidy_one(binary, build_dir, source):
    proc = subprocess.run(
        [binary, "-p", str(build_dir), "--quiet", str(source)],
        capture_output=True, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            rel = normalise(m.group("file"))
            findings.add(
                f"{rel}:{m.group('line')}:{m.group('col')}: "
                f"{m.group('check')}")
    # clang-tidy exits non-zero on compile errors even with zero
    # findings; surface those so a broken database isn't a silent pass.
    hard_error = proc.returncode != 0 and not findings and (
        "error:" in proc.stdout or "error:" in proc.stderr)
    return findings, hard_error, proc.stderr if hard_error else ""


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default=str(ROOT / "build"))
    ap.add_argument("--clang-tidy", default=None)
    ap.add_argument("--require", action="store_true",
                    help="fail (exit 2) if clang-tidy is unavailable")
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("-j", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args(argv[1:])

    binary = find_binary(args.clang_tidy)
    if binary is None:
        msg = ("run_clang_tidy: SKIP — no clang-tidy on PATH "
               "(set $CLANG_TIDY or pass --clang-tidy)")
        if args.require:
            print(msg.replace("SKIP", "FAIL (--require)"), file=sys.stderr)
            return 2
        print(msg)
        return 0

    build_dir = pathlib.Path(args.build_dir)
    if not (build_dir / "compile_commands.json").is_file():
        print(f"run_clang_tidy: no compile_commands.json in {build_dir} "
              "— configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "
              "(the default)", file=sys.stderr)
        return 2

    sources = sorted((ROOT / "src").rglob("*.cc"))
    if not sources:
        print("run_clang_tidy: no sources under src/", file=sys.stderr)
        return 2

    findings = set()
    errors = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.j) as ex:
        for found, hard_error, err in ex.map(
                lambda s: tidy_one(binary, build_dir, s), sources):
            findings |= found
            if hard_error:
                errors.append(err)
    if errors:
        print("run_clang_tidy: clang-tidy failed to parse the tree "
              "(stale compile database?):", file=sys.stderr)
        print(errors[0][:2000], file=sys.stderr)
        return 2

    if args.update_baseline:
        header = ("# clang-tidy baseline: findings tolerated by "
                  "tools/run_clang_tidy.py.\n"
                  "# Kept EMPTY by policy — fix findings instead of "
                  "listing them. Regenerate\n"
                  "# with tools/run_clang_tidy.py --update-baseline "
                  "(docs/static-analysis.md).\n")
        BASELINE.write_text(
            header + "".join(f"{f}\n" for f in sorted(findings)),
            encoding="utf-8")
        print(f"run_clang_tidy: baseline updated "
              f"({len(findings)} entries)")
        return 0

    baseline = load_baseline()
    new = sorted(findings - baseline)
    stale = sorted(baseline - findings)

    if new:
        print(f"RUN_CLANG_TIDY FAILED ({len(new)} new finding(s), "
              f"{len(sources)} files, binary {binary}):")
        for f in new:
            print(f"  {f}")
        print("\nfix the finding (preferred) or, for deliberate debt, "
              "record it via --update-baseline and justify it in the "
              "PR (docs/static-analysis.md).")
        return 1
    if stale:
        print(f"run_clang_tidy: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (already fixed — "
              "shrink the baseline):")
        for f in stale:
            print(f"  {f}")
        return 1
    print(f"run_clang_tidy passed: {len(sources)} files, 0 findings "
          f"beyond an empty baseline (binary {binary})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
