#!/usr/bin/env python3
"""Self-test for the CI perf gate (tools/bench_compare.py).

Runs the gate against synthetic fixture JSON and asserts it passes and
fails where it must — in particular the vacuous-attainment regression:
a quota cell whose `slo_ok` turns null (tenant served zero requests)
must FAIL against a baseline where it was true, and a numeric
`attainment` turning null must fail too. Registered as a ctest so the
gate's own behaviour is regression-tested alongside the C++ suite.

Usage: tools/bench_compare_selftest.py   (exit 0 = all checks hold)
"""

import copy
import json
import pathlib
import subprocess
import sys
import tempfile

GATE = pathlib.Path(__file__).resolve().parent / "bench_compare.py"

BASELINE_VGPU = {
    "bench": "vgpu_isolation",
    "quick": True,
    "duration_ms": 250.0,
    "cells": [
        {"be_tenants": 4, "system": "SGDRC + quota", "quota": True,
         "p99_ms": 3.2, "slo_ms": 5.9, "slo_ok": True, "attainment": 1.0,
         "be_samples_per_s": 27.4, "guarantee_violations": 0},
        {"be_tenants": 4, "system": "Multi-streaming", "quota": False,
         "p99_ms": 12.6, "slo_ms": 5.9, "slo_ok": False, "attainment": 0.35,
         "be_samples_per_s": 31.0, "guarantee_violations": 9000},
    ],
}


BASELINE_MEMORY = {
    "bench": "memory_pressure",
    "quick": True,
    "duration_ms": 300.0,
    "sgdrc_cold_p99_wins": 2,
    "compared_pressures": 2,
    "cells": [
        {"pressure": 2.0, "vram_mb": 80.0, "system": "SGDRC (memory-quota)",
         "p99_ms": 14.4, "cold_start_p99_ms": 10.1, "cold_requests": 12,
         "weight_loads": 45, "weight_evictions": 33, "paged_requests": 0,
         "goodput_per_s": 4100.0, "attainment": 0.99, "slo_ok": True,
         "memory_trespasses": 0, "requests": 1300},
        {"pressure": 2.0, "vram_mb": 80.0, "system": "Naive (resident-FIFO)",
         "p99_ms": 96.2, "cold_start_p99_ms": 162.5, "cold_requests": 400,
         "weight_loads": 1332, "weight_evictions": 1320, "paged_requests": 0,
         "goodput_per_s": 2500.0, "attainment": 0.61, "slo_ok": False,
         "memory_trespasses": 0, "requests": 1300},
    ],
}


BASELINE_FLEET = {
    "bench": "fleet_scaling",
    "quick": True,
    "hw_threads": 16,
    "runs": [
        {"devices": 4, "placement": "spread", "router": "round-robin",
         "system": "SGDRC", "fleet_p99_ms": 2.1, "be_samples_per_s": 210.0},
        {"devices": 16, "placement": "packed", "router": "least-outstanding",
         "system": "SGDRC", "fleet_p99_ms": 2.4, "be_samples_per_s": 700.0},
    ],
    "throughput": [
        {"devices": 256, "threads": 16, "sim_ms": 40, "events": 624000,
         "serial_wall_ms": 1700.0, "parallel_wall_ms": 400.0,
         "serial_events_per_s": 367000.0, "parallel_events_per_s": 1560000.0,
         "serial_sim_s_per_wall_s": 0.023, "parallel_sim_s_per_wall_s": 0.1,
         "speedup": 4.25, "matches_serial": True},
    ],
}


BASELINE_SCENARIOS = {
    "bench": "scenario_sweep",
    "quick": True,
    "duration_ms": 240.0,
    "sgdrc_wins_vs_best_static": 2,
    "overload_order_ok": True,
    "scenario_count": 2,
    "scenarios": [
        {"name": "steady", "description": "constant load", "devices": 2,
         "autoscaled": False,
         "systems": [
             {"name": "SGDRC", "fleet_p99_ms": 2.6, "slo_attainment": 1.0,
              "ls_goodput_per_s": 940.0, "be_samples_per_s": 297.0,
              "requests": 230, "scaling_actions": 0},
         ]},
        {"name": "flash-overload", "description": "8x spike", "devices": 2,
         "autoscaled": False,
         "device_specs": ["RTX-A2000", "A100-SXM4-40GB"],
         "front_door": True,
         "systems": [
             {"name": "SGDRC", "fleet_p99_ms": 4.7, "slo_attainment": 0.95,
              "ls_goodput_per_s": 2300.0, "be_samples_per_s": 331.0,
              "requests": 639, "scaling_actions": 0,
              "front_door": {
                  "arrived": 639, "admitted": 610, "rejected": 0,
                  "shed": 61, "retries": 50, "dropped": 25,
                  "expired": 0, "pending_retries": 4,
                  "be_pause_events": 7, "be_paused_ms": 48.3,
                  "services": [
                      {"service": 0, "arrived": 192, "admitted": 192,
                       "rejected": 0, "shed": 0, "dropped": 0,
                       "attainment": 0.99, "demand_attainment": 0.99},
                      {"service": 1, "arrived": 226, "admitted": 201,
                       "rejected": 0, "shed": 30, "dropped": 12,
                       "attainment": 0.97, "demand_attainment": 0.86},
                  ]}},
         ]},
    ],
}


BASELINE_DAG = {
    "bench": "dag_parallelism",
    "quick": True,
    "duration_ms": 250.0,
    "gate": {"system": "SGDRC", "dag_p99_ms": 0.57, "serialized_p99_ms": 0.73,
             "speedup": 1.28, "dag_attainment": 1.0,
             "serialized_attainment": 1.0, "ok": True},
    "cells": [
        {"system": "SGDRC", "dag": True, "p99_ms": 0.57, "slo_ms": 4.4,
         "attainment": 1.0, "be_samples_per_s": 88.0},
        {"system": "SGDRC", "dag": False, "p99_ms": 0.73, "slo_ms": 4.4,
         "attainment": 1.0, "be_samples_per_s": 84.0},
        {"system": "MPS", "dag": True, "p99_ms": 1.9, "slo_ms": 4.4,
         "attainment": 0.98, "be_samples_per_s": 120.0},
    ],
}


def run_gate(baseline, current, name="BENCH_vgpu.json"):
    with tempfile.TemporaryDirectory() as tmp:
        bdir = pathlib.Path(tmp) / "baseline"
        cdir = pathlib.Path(tmp) / "current"
        bdir.mkdir()
        cdir.mkdir()
        (bdir / name).write_text(json.dumps(baseline))
        (cdir / name).write_text(json.dumps(current))
        proc = subprocess.run(
            [sys.executable, str(GATE), str(bdir), str(cdir)],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


def expect(name, rc, out, should_fail, needle=None):
    ok = (rc != 0) == should_fail and (needle is None or needle in out)
    status = "ok" if ok else "FAILED"
    print(f"  [{status}] {name}")
    if not ok:
        print(out)
    return ok


def main():
    checks = []

    rc, out = run_gate(BASELINE_VGPU, BASELINE_VGPU)
    checks.append(expect("identical output passes", rc, out, False))

    cur = copy.deepcopy(BASELINE_VGPU)
    cur["cells"][0]["slo_ok"] = False
    rc, out = run_gate(BASELINE_VGPU, cur)
    checks.append(expect("slo_ok true -> false fails", rc, out, True,
                         "pass/fail metric was true"))

    # The vacuous-attainment regression: a quota cell that served zero
    # requests emits slo_ok: null / attainment: null; the gate used to
    # compare only `is False` and waved the null through as a pass.
    cur = copy.deepcopy(BASELINE_VGPU)
    cur["cells"][0]["slo_ok"] = None
    cur["cells"][0]["attainment"] = None
    rc, out = run_gate(BASELINE_VGPU, cur)
    checks.append(expect("slo_ok true -> null (no data) fails", rc, out,
                         True, "no-data now"))

    cur = copy.deepcopy(BASELINE_VGPU)
    cur["cells"][1]["attainment"] = None
    rc, out = run_gate(BASELINE_VGPU, cur)
    checks.append(expect("attainment number -> null fails", rc, out, True,
                         "attainment was"))

    cur = copy.deepcopy(BASELINE_VGPU)
    cur["cells"][0]["p99_ms"] = 5.0  # +56%
    rc, out = run_gate(BASELINE_VGPU, cur)
    checks.append(expect("p99 regression fails", rc, out, True, "p99"))

    cur = copy.deepcopy(BASELINE_VGPU)
    del cur["cells"][1]
    rc, out = run_gate(BASELINE_VGPU, cur)
    checks.append(expect("shrunk coverage fails", rc, out, True,
                         "missing from current output"))

    # A non-quota cell's slo_ok is informational; flipping it must not trip
    # the quota gate (Multi-streaming is *expected* to miss under floods).
    cur = copy.deepcopy(BASELINE_VGPU)
    cur["cells"][1]["slo_ok"] = True
    rc, out = run_gate(BASELINE_VGPU, cur)
    checks.append(expect("non-quota slo_ok change passes", rc, out, False))

    # ---- memory_pressure extractor ----
    mem = "BENCH_memory.json"
    rc, out = run_gate(BASELINE_MEMORY, BASELINE_MEMORY, name=mem)
    checks.append(expect("memory: identical output passes", rc, out, False))

    cur = copy.deepcopy(BASELINE_MEMORY)
    cur["cells"][0]["cold_start_p99_ms"] = 50.0  # +395%
    rc, out = run_gate(BASELINE_MEMORY, cur, name=mem)
    checks.append(expect("memory: cold-start p99 regression fails", rc, out,
                         True, "cold"))

    # The quota stack keeping every request warm is an *improvement*: the
    # cold p99 lapses to null and the p99 comparison simply skips.
    cur = copy.deepcopy(BASELINE_MEMORY)
    cur["cells"][0]["cold_start_p99_ms"] = None
    cur["cells"][0]["cold_requests"] = 0
    rc, out = run_gate(BASELINE_MEMORY, cur, name=mem)
    checks.append(expect("memory: cold p99 -> null (no cold) passes", rc,
                         out, False))

    cur = copy.deepcopy(BASELINE_MEMORY)
    cur["cells"][0]["slo_ok"] = None
    cur["cells"][0]["attainment"] = None
    rc, out = run_gate(BASELINE_MEMORY, cur, name=mem)
    checks.append(expect("memory: quota slo_ok true -> null fails", rc, out,
                         True, "no-data now"))

    # The naive baseline is expected to blow its SLO; its slo_ok is
    # informational and must not arm the pass/fail gate.
    cur = copy.deepcopy(BASELINE_MEMORY)
    cur["cells"][1]["slo_ok"] = True
    rc, out = run_gate(BASELINE_MEMORY, cur, name=mem)
    checks.append(expect("memory: naive slo_ok change passes", rc, out,
                         False))

    cur = copy.deepcopy(BASELINE_MEMORY)
    cur["cells"][0]["goodput_per_s"] = 2000.0  # -51%
    rc, out = run_gate(BASELINE_MEMORY, cur, name=mem)
    checks.append(expect("memory: goodput drop fails", rc, out, True,
                         "throughput"))

    cur = copy.deepcopy(BASELINE_MEMORY)
    del cur["cells"][1]
    rc, out = run_gate(BASELINE_MEMORY, cur, name=mem)
    checks.append(expect("memory: shrunk coverage fails", rc, out, True,
                         "missing from current output"))

    # ---- fleet_scaling throughput extractor + absolute validator ----
    flt = "BENCH_fleet.json"
    rc, out = run_gate(BASELINE_FLEET, BASELINE_FLEET, name=flt)
    checks.append(expect("fleet: identical output passes", rc, out, False))

    # Bit-identity is a hard gate on any machine — a parallel engine that
    # diverges from serial is a correctness bug, not a perf number.
    cur = copy.deepcopy(BASELINE_FLEET)
    cur["throughput"][0]["matches_serial"] = False
    rc, out = run_gate(BASELINE_FLEET, cur, name=flt)
    checks.append(expect("fleet: matches_serial false fails", rc, out, True,
                         "bit-for-bit"))

    # Speedup is gated only where the number measures the code: a wide
    # machine delivering < 3x fails ...
    cur = copy.deepcopy(BASELINE_FLEET)
    cur["throughput"][0]["speedup"] = 1.4
    rc, out = run_gate(BASELINE_FLEET, cur, name=flt)
    checks.append(expect("fleet: low speedup on wide machine fails", rc, out,
                         True, "speedup"))

    # ... while the same speedup on a narrow CI runner passes (there is
    # no parallelism to be had below 8 hardware threads).
    cur = copy.deepcopy(BASELINE_FLEET)
    cur["hw_threads"] = 2
    cur["throughput"][0]["speedup"] = 0.9
    rc, out = run_gate(BASELINE_FLEET, cur, name=flt)
    checks.append(expect("fleet: low speedup on narrow machine passes", rc,
                         out, False))

    cur = copy.deepcopy(BASELINE_FLEET)
    del cur["throughput"][0]
    rc, out = run_gate(BASELINE_FLEET, cur, name=flt)
    checks.append(expect("fleet: dropped throughput cell fails", rc, out,
                         True, "missing from current output"))

    cur = copy.deepcopy(BASELINE_FLEET)
    cur["runs"][0]["fleet_p99_ms"] = 5.0  # +138%
    rc, out = run_gate(BASELINE_FLEET, cur, name=flt)
    checks.append(expect("fleet: sweep p99 regression still fails", rc, out,
                         True, "p99"))

    # ---- scenario_sweep front-door extractor + absolute validator ----
    scn = "BENCH_scenarios.json"
    rc, out = run_gate(BASELINE_SCENARIOS, BASELINE_SCENARIOS, name=scn)
    checks.append(expect("scenarios: identical output passes", rc, out,
                         False))

    # The overload gate is an absolute invariant of the current output:
    # a flash-overload run that stops degrading in QoS order fails even
    # if every relative number is within tolerance.
    cur = copy.deepcopy(BASELINE_SCENARIOS)
    cur["overload_order_ok"] = False
    rc, out = run_gate(BASELINE_SCENARIOS, cur, name=scn)
    checks.append(expect("scenarios: overload order broken fails", rc, out,
                         True, "QoS-ordered"))

    # Conservation: arrived == admitted + dropped + pending_retries for
    # every front-door record — a leak is a front-door accounting bug.
    cur = copy.deepcopy(BASELINE_SCENARIOS)
    cur["scenarios"][1]["systems"][0]["front_door"]["dropped"] = 0
    rc, out = run_gate(BASELINE_SCENARIOS, cur, name=scn)
    checks.append(expect("scenarios: front-door leak fails", rc, out, True,
                         "leaked requests"))

    # Demand attainment counts shed/dropped requests against the tier;
    # it lapsing to null (zero door arrivals) is data loss, not a pass.
    cur = copy.deepcopy(BASELINE_SCENARIOS)
    svc = cur["scenarios"][1]["systems"][0]["front_door"]["services"][1]
    svc["demand_attainment"] = None
    rc, out = run_gate(BASELINE_SCENARIOS, cur, name=scn)
    checks.append(expect("scenarios: demand attainment -> null fails", rc,
                         out, True, "attainment was"))

    # A front-door per-service record disappearing shrinks the gate.
    cur = copy.deepcopy(BASELINE_SCENARIOS)
    del cur["scenarios"][1]["systems"][0]["front_door"]["services"][1]
    rc, out = run_gate(BASELINE_SCENARIOS, cur, name=scn)
    checks.append(expect("scenarios: dropped service record fails", rc, out,
                         True, "missing from current output"))

    # ---- dag_parallelism extractor + absolute validator ----
    dag = "BENCH_dag.json"
    rc, out = run_gate(BASELINE_DAG, BASELINE_DAG, name=dag)
    checks.append(expect("dag: identical output passes", rc, out, False))

    # The headline claim is an absolute invariant of the current output:
    # SGDRC's DAG form no longer strictly beating its serialized form
    # fails even when every relative number is within tolerance.
    cur = copy.deepcopy(BASELINE_DAG)
    cur["gate"]["ok"] = False
    rc, out = run_gate(BASELINE_DAG, cur, name=dag)
    checks.append(expect("dag: gate.ok false fails", rc, out, True,
                         "strictly beat"))

    cur = copy.deepcopy(BASELINE_DAG)
    cur["cells"][0]["p99_ms"] = 0.71  # +25%
    rc, out = run_gate(BASELINE_DAG, cur, name=dag)
    checks.append(expect("dag: DAG-cell p99 regression fails", rc, out, True,
                         "p99"))

    cur = copy.deepcopy(BASELINE_DAG)
    cur["cells"][2]["attainment"] = None
    rc, out = run_gate(BASELINE_DAG, cur, name=dag)
    checks.append(expect("dag: attainment -> null fails", rc, out, True,
                         "attainment was"))

    cur = copy.deepcopy(BASELINE_DAG)
    del cur["cells"][1]
    rc, out = run_gate(BASELINE_DAG, cur, name=dag)
    checks.append(expect("dag: dropped serialized cell fails", rc, out, True,
                         "missing from current output"))

    if not all(checks):
        print("bench_compare selftest FAILED")
        return 1
    print(f"bench_compare selftest passed ({len(checks)} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
