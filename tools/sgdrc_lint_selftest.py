#!/usr/bin/env python3
"""Self-test for sgdrc-lint (tools/sgdrc_lint.py).

Each named check gets a fixture snippet that MUST trip it and a clean
sibling that MUST pass; suppression syntax (line and file level),
comment/string immunity, and scoping (bench wall-clock vs src) are
pinned too. Mirrors bench_compare_selftest.py: synthetic fixtures in a
temp dir, the real tool run as a subprocess, registered as a ctest so
the linter's own behaviour is regression-tested alongside the C++
suite — a linter that silently stops firing is worse than no linter.

Usage: tools/sgdrc_lint_selftest.py   (exit 0 = all checks hold)
"""

import pathlib
import subprocess
import sys
import tempfile

LINT = pathlib.Path(__file__).resolve().parent / "sgdrc_lint.py"

failures = []
checks_run = 0


def run_lint(tree):
    """Materialise {relpath: content} in a temp dir and lint it."""
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        for rel, content in tree.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content, encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(LINT), str(root)],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


def expect(name, tree, should_fail, needle=None):
    global checks_run
    checks_run += 1
    rc, out = run_lint(tree)
    if should_fail and rc == 0:
        failures.append(f"{name}: expected findings, got clean pass")
    elif not should_fail and rc != 0:
        failures.append(f"{name}: expected clean pass, got:\n{out}")
    elif rc not in (0, 1):
        failures.append(f"{name}: unexpected exit {rc}:\n{out}")
    elif needle and needle not in out:
        failures.append(f"{name}: output missing '{needle}':\n{out}")
    else:
        print(f"  ok: {name}")


H = "#pragma once\n"  # fixture headers start clean on pragma-once


def main():
    # ---- wall-clock ------------------------------------------------------
    expect("wall-clock trips on steady_clock in src",
           {"src/a.cc": "auto t = std::chrono::steady_clock::now();\n"},
           should_fail=True, needle="[wall-clock]")
    expect("wall-clock trips on time(nullptr) in tests",
           {"tests/a.cc": "long t = time(nullptr);\n"},
           should_fail=True, needle="[wall-clock]")
    expect("wall-clock trips in bench without the per-file allow",
           {"bench/b.cc": "auto t = std::chrono::steady_clock::now();\n"},
           should_fail=True, needle="[wall-clock]")
    expect("wall-clock allow-file clears a bench timing main",
           {"bench/b.cc":
            "// sgdrc-lint: allow-file(wall-clock) — measures the machine\n"
            "auto t = std::chrono::steady_clock::now();\n"},
           should_fail=False)
    expect("sim-time clock use is clean",
           {"src/a.cc": "TimeNs t = queue_.now();\n"},
           should_fail=False)

    # ---- raw-rand --------------------------------------------------------
    expect("raw-rand trips on rand()",
           {"src/a.cc": "int x = rand();\n"},
           should_fail=True, needle="[raw-rand]")
    expect("raw-rand trips on std::random_device",
           {"src/a.cc": "std::random_device rd;\n"},
           should_fail=True, needle="[raw-rand]")
    expect("raw-rand trips on #include <random>",
           {"tests/a.cc": "#include <random>\n"},
           should_fail=True, needle="[raw-rand]")
    expect("seeded common/rng.h stream is clean",
           {"src/a.cc": "Rng rng(opt.seed);\nint x = rng.uniform_int(0, 9);\n"},
           should_fail=False)

    # ---- unordered-container --------------------------------------------
    expect("unordered-container trips on unordered_map",
           {"src/a.cc": "std::unordered_map<int, int> m;\n"},
           should_fail=True, needle="[unordered-container]")
    expect("unordered-container trips on the include",
           {"src/a.h": H + "#include <unordered_set>\n"},
           should_fail=True, needle="[unordered-container]")
    expect("ordered std::map is clean",
           {"src/a.cc": "std::map<int, int> m;\n"},
           should_fail=False)

    # ---- pointer-key -----------------------------------------------------
    expect("pointer-key trips on std::map<T*, ...>",
           {"src/a.cc": "std::map<Job*, int> by_job;\n"},
           should_fail=True, needle="[pointer-key]")
    expect("pointer-key trips on std::set<const T*>",
           {"src/a.cc": "std::set<const Job*> seen;\n"},
           should_fail=True, needle="[pointer-key]")
    expect("id-keyed map is clean",
           {"src/a.cc": "std::map<JobId, int> by_job;\n"},
           should_fail=False)

    # ---- rng-seed-literal ------------------------------------------------
    expect("rng-seed-literal trips on a bare literal seed in src",
           {"src/a.cc": "Rng rng(12345);\n"},
           should_fail=True, needle="[rng-seed-literal]")
    expect("rng-seed-literal trips on a bare splitmix64 salt",
           {"src/a.cc": "Rng rng(splitmix64(seed ^ 0xdeadbeef12ull));\n"},
           should_fail=True, needle="[rng-seed-literal]")
    expect("named k...Salt constant is clean",
           {"src/a.cc": "Rng rng(splitmix64(seed ^ kFrontDoorSalt));\n"},
           should_fail=False)
    expect("the named salt's own definition is clean",
           {"src/a.cc":
            "constexpr uint64_t kFrontDoorSalt = 0xf407d007ull;\n"},
           should_fail=False)
    expect("literal seeds in tests are out of scope",
           {"tests/a.cc": "Rng rng(42);\n"},
           should_fail=False)

    # ---- using-namespace-header -----------------------------------------
    expect("using-namespace-header trips in a header",
           {"src/a.h": H + "using namespace std;\n"},
           should_fail=True, needle="[using-namespace-header]")
    expect("using namespace in a .cc is allowed",
           {"src/a.cc": "using namespace std::literals;\n"},
           should_fail=False)
    expect("using-declaration in a header is clean",
           {"src/a.h": H + "using workload::Request;\n"},
           should_fail=False)

    # ---- pragma-once -----------------------------------------------------
    expect("pragma-once trips on a bare header",
           {"src/a.h": "struct A {};\n"},
           should_fail=True, needle="[pragma-once]")
    expect("pragma-once satisfied",
           {"src/a.h": H + "struct A {};\n"},
           should_fail=False)

    # ---- suppression and immunity ---------------------------------------
    expect("same-line allow suppresses",
           {"src/a.cc":
            "std::unordered_map<int, int> m;  "
            "// sgdrc-lint: allow(unordered-container)\n"},
           should_fail=False)
    expect("previous-line allow suppresses",
           {"src/a.cc":
            "// sgdrc-lint: allow(unordered-container) — membership only,\n"
            "std::unordered_map<int, int> m;\n"},
           should_fail=False)
    expect("allow of one check does not clear another",
           {"src/a.cc":
            "// sgdrc-lint: allow(wall-clock)\n"
            "std::unordered_map<int, int> m;\n"},
           should_fail=True, needle="[unordered-container]")
    expect("mention in a // comment never trips",
           {"src/a.cc": "// never use std::random_device or rand() here\n"},
           should_fail=False)
    expect("mention in a block comment never trips",
           {"src/a.cc":
            "/* std::unordered_map<int,int> would break determinism\n"
            "   across libstdc++ versions */\n"},
           should_fail=False)
    expect("mention in a string literal never trips",
           {"src/a.cc":
            "const char* msg = \"no std::random_device allowed\";\n"},
           should_fail=False)

    # ---- multi-finding shape --------------------------------------------
    expect("two findings are both reported with locations",
           {"src/a.cc": "int x = rand();\n",
            "src/b.h": "struct B {};\n"},
           should_fail=True, needle="src/a.cc:1")

    if failures:
        print(f"\nSGDRC-LINT SELFTEST FAILED "
              f"({len(failures)}/{checks_run} checks):")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"\nsgdrc-lint selftest passed: {checks_run} checks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
