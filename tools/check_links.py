#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/ (stdlib only).

Walks every tracked markdown page (README.md plus docs/**/*.md), extracts
inline links and images, and fails (exit 1) when

  * a relative link points at a file that does not exist in the repo
    (dead intra-repo link), or
  * a link's `#fragment` names a heading anchor that the target page
    does not define (GitHub heading slugification, including the `-1`,
    `-2` suffixes for duplicate headings), or
  * a link uses an absolute filesystem path (breaks on every machine
    but the author's).

External links (http/https/mailto) are NOT fetched — the checker is
offline and deterministic, so CI never goes red on someone else's
outage. Bare code spans and fenced code blocks are ignored: a
`docs/foo.md` mentioned in prose or a shell snippet is documentation,
not a link; only actual []()-links are contract.

Registered as the `docs_link_check` ctest and run by the CI docs job.

Usage: tools/check_links.py [REPO_ROOT]   (exit 0 = all links resolve)
"""

import pathlib
import re
import sys

# Inline links/images: [text](target) / ![alt](target). Markdown allows
# one level of balanced parens inside the target; titles ("...") are
# stripped afterwards.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*([^()\s]*(?:\([^()]*\)[^()\s]*)*)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, mailto:, …


def strip_inline_code(line):
    """Remove `code spans` so links inside them are not parsed."""
    return re.sub(r"`[^`]*`", "", line)


def github_slug(heading, seen):
    """GitHub's anchor algorithm: strip markdown markup, lowercase, drop
    punctuation, spaces to hyphens, numeric suffix for duplicates."""
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links -> text
    text = text.replace("`", "")
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def page_anchors(path, cache):
    if path not in cache:
        anchors, seen = set(), {}
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2), seen))
        cache[path] = anchors
    return cache[path]


def iter_links(path):
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(strip_inline_code(line)):
            target = m.group(1).split('"')[0].strip()
            if target:
                yield lineno, target


def check_page(page, root, anchor_cache):
    failures = []
    for lineno, target in iter_links(page):
        where = f"{page.relative_to(root)}:{lineno}"
        if EXTERNAL_RE.match(target):
            continue  # http(s)/mailto — out of scope, offline checker
        filepart, _, fragment = target.partition("#")
        if filepart.startswith("/"):
            failures.append(f"{where}: absolute path link '{target}' "
                            "(use a repo-relative path)")
            continue
        dest = page if not filepart else (page.parent / filepart).resolve()
        if not dest.exists():
            failures.append(f"{where}: dead link '{target}' — "
                            f"{dest.relative_to(root) if root in dest.parents or dest == root else dest} does not exist")
            continue
        if fragment:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                continue  # anchors only checked on markdown pages
            if fragment.lower() not in page_anchors(dest, anchor_cache):
                failures.append(
                    f"{where}: link '{target}' — no heading in "
                    f"{dest.relative_to(root)} produces anchor "
                    f"'#{fragment}'")
    return failures


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else
                        pathlib.Path(__file__).resolve().parent.parent)
    root = root.resolve()
    pages = sorted([root / "README.md"] + list((root / "docs").rglob("*.md")))
    pages = [p for p in pages if p.exists()]
    if not pages:
        print(f"check_links: no markdown pages under {root}", file=sys.stderr)
        return 1

    anchor_cache = {}
    failures = []
    checked = 0
    for page in pages:
        page_failures = check_page(page, root, anchor_cache)
        failures.extend(page_failures)
        checked += 1

    if failures:
        print(f"LINK CHECK FAILED ({len(failures)} broken link(s) across "
              f"{checked} pages):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"link check passed: {checked} pages, all intra-repo links and "
          "anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
