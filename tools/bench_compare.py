#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json artifacts.

Compares freshly produced bench JSON against the committed baselines in
bench/baselines/ and fails (exit 1) when

  * any p99 latency metric regresses by more than --p99-tolerance
    (default 15%), or
  * any best-effort throughput metric drops by more than --be-tolerance
    (default 10%), or
  * a boolean pass/fail metric (e.g. vgpu_isolation's quota-isolation
    `slo_ok`, batching_sweep's SGDRC `slo_ok`) stops being true — a flip
    to false AND a lapse into null/no-data both fail: a tenant that
    served zero requests must not pass the gate vacuously, or
  * a numeric `attainment` in the baseline turns null (no data) now, or
  * a (scenario, system) combination present in the baseline disappears
    from the current output (shrinking coverage would silently shrink
    the gate), or
  * an absolute invariant of the current output is violated — today:
    fleet_scaling's sharded-engine throughput cells must report
    matches_serial == true (parallel bit-identical to serial), and on
    machines with >= 8 hardware threads the parallel speedup must be
    >= 3x (the speedup check is skipped on narrower machines, where the
    number measures the box, not the code); scenario_sweep's
    overload_order_ok must hold (flash-overload degrades in QoS order)
    and its front-door records must conserve requests (arrived ==
    admitted + dropped + pending_retries). See docs/bench-json.md.

The simulation is deterministic (fixed seeds, integer-ns clocks), so in
practice current == baseline exactly; the tolerances exist so a genuine
perf-affecting change trips the gate while benign rounding noise never
does. Improvements (lower p99 / higher BE) always pass — refresh the
baselines when you want the gate to hold the new line:

    ./fleet_scaling    --quick --json bench/baselines/BENCH_fleet.json
    ./fig17_end_to_end --quick --json bench/baselines/BENCH_fig17.json
    ./scenario_sweep   --quick --json bench/baselines/BENCH_scenarios.json
    ./vgpu_isolation   --quick --json bench/baselines/BENCH_vgpu.json
    ./batching_sweep   --quick --json bench/baselines/BENCH_batching.json
    ./memory_pressure  --quick --json bench/baselines/BENCH_memory.json
    ./dag_parallelism  --quick --json bench/baselines/BENCH_dag.json

Override: label the PR `perf-gate-override` (documented in README) to
skip the gate on the PR run for intentional regressions. The label
cannot reach the push-to-main run, so refresh the baselines before
merging to keep main green.

Usage:
    tools/bench_compare.py BASELINE_DIR CURRENT_DIR [options]
"""

import argparse
import json
import pathlib
import sys

# Values below this (ms / samples-per-s) are too small for a relative
# gate to be meaningful; they are compared with slack instead.
ABS_P99_FLOOR_MS = 0.05
ABS_BE_FLOOR = 1.0


def records_fleet(doc):
    """fleet_scaling: one record per sweep cell, plus one per
    sharded-engine throughput cell. The throughput `ok` is the
    bit-identity of the parallel engine against serial — a hard gate on
    any machine. Wall-clock fields (events/sec, speedup) are NOT
    compared against the baseline: they measure the recording machine,
    not the code (see validate_fleet for the absolute speedup check)."""
    for run in doc.get("runs", []):
        key = ("fleet", run["devices"], run["placement"], run["router"],
               run["system"])
        yield key, {"p99_ms": run.get("fleet_p99_ms"),
                    "be": run.get("be_samples_per_s")}
    for cell in doc.get("throughput", []):
        yield ("fleet-throughput", cell["devices"]), {
            "ok": cell.get("matches_serial"),
        }


# Minimum hardware threads for the absolute speedup check, and the
# speedup the parallel engine must then deliver at every fleet size.
SPEEDUP_MIN_HW_THREADS = 8
SPEEDUP_FLOOR = 3.0


def validate_fleet(doc, name):
    """Absolute (baseline-independent) invariants of the CURRENT
    fleet_scaling output: the parallel engine must match serial
    bit-for-bit everywhere, and — when the recording machine has 8+
    hardware threads, so the number is physically meaningful — deliver
    at least a 3x wall-clock speedup over serial on the big fleets."""
    failures = []
    hw = doc.get("hw_threads", 0)
    for cell in doc.get("throughput", []):
        if cell.get("matches_serial") is not True:
            failures.append(
                f"{name}: throughput/{cell.get('devices')}: parallel engine "
                "did not reproduce serial results bit-for-bit")
        speedup = cell.get("speedup")
        if (hw >= SPEEDUP_MIN_HW_THREADS and speedup is not None
                and speedup < SPEEDUP_FLOOR):
            failures.append(
                f"{name}: throughput/{cell.get('devices')}: parallel speedup "
                f"{speedup:.2f}x < {SPEEDUP_FLOOR:.0f}x on a "
                f"{hw}-hardware-thread machine")
    return failures


def validate_scenarios(doc, name):
    """Absolute invariants of the CURRENT scenario_sweep output:

    * overload_order_ok (the flash-overload QoS-ordered-degradation gate
      the bench itself computes — BE pauses first, low-priority LS sheds
      next, the premium tier sheds least and keeps the highest demand
      attainment) must be true whenever the bench emits it, and
    * every front-door record must conserve requests: each first-attempt
      arrival terminates as admitted or dropped, or sits in a scheduled
      retry at the horizon (arrived == admitted + dropped +
      pending_retries). Rejected/shed are per-attempt event counts, not
      terminal outcomes, so they are deliberately outside the identity.
    """
    failures = []
    if doc.get("overload_order_ok") is False:
        failures.append(
            f"{name}: flash-overload degradation is not QoS-ordered "
            "(overload_order_ok is false)")
    for sc in doc.get("scenarios", []):
        for system in sc.get("systems", []):
            door = system.get("front_door")
            if not door:
                continue
            arrived = door.get("arrived", 0)
            accounted = (door.get("admitted", 0) + door.get("dropped", 0)
                         + door.get("pending_retries", 0))
            if arrived != accounted:
                failures.append(
                    f"{name}: {sc['name']}/{system['name']}: front door "
                    f"leaked requests: arrived {arrived} != admitted + "
                    f"dropped + pending_retries {accounted}")
    return failures


def validate_dag(doc, name):
    """Absolute invariant of the CURRENT dag_parallelism output: the
    bench's own gate — under SGDRC the DAG form must strictly beat the
    serialized form on LS p99 without losing SLO attainment. The bench
    exits non-zero when this fails, but the JSON records it too so a
    stale artifact cannot slip past the perf gate."""
    gate = doc.get("gate") or {}
    if gate.get("ok") is not True:
        return [
            f"{name}: {gate.get('system', 'SGDRC')}: DAG co-scheduling did "
            "not strictly beat the serialized form at equal attainment "
            "(gate.ok is not true)"]
    return []


VALIDATORS = {
    "fleet_scaling": validate_fleet,
    "scenario_sweep": validate_scenarios,
    "dag_parallelism": validate_dag,
}


def records_fig17(doc):
    """fig17_end_to_end: one record per (gpu, load, system), with
    per-model p99 sub-records."""
    for sc in doc.get("scenarios", []):
        for system in sc.get("systems", []):
            base = ("fig17", sc["gpu"], sc["load"], system["name"])
            yield base, {"be": system.get("be_samples_per_s")}
            for model, p99 in system.get("p99_ms", {}).items():
                yield base + (model,), {"p99_ms": p99}


def records_scenarios(doc):
    """scenario_sweep: one record per (scenario, system). Front-door
    scenarios (flash-overload, retry-storm, device-failure) add one
    sub-record per LS service gating its demand attainment (attained /
    door arrivals — counts shed and dropped requests against the tier,
    so a hard-shedding service cannot look healthy by serving little)."""
    for sc in doc.get("scenarios", []):
        for system in sc.get("systems", []):
            base = ("scenario", sc["name"], system["name"])
            yield base, {
                "p99_ms": system.get("fleet_p99_ms"),
                "be": system.get("be_samples_per_s"),
            }
            door = system.get("front_door") or {}
            for svc in door.get("services", []):
                yield base + ("svc", svc["service"]), {
                    "att": svc.get("demand_attainment"),
                }


def records_vgpu(doc):
    """vgpu_isolation: one record per (flood size, system). The `ok`
    boolean is the quota-isolation property itself (LS p99 within SLO);
    losing it is a regression regardless of magnitude. `slo_ok` is null
    when the tenant served nothing (no data ≠ pass)."""
    for cell in doc.get("cells", []):
        yield ("vgpu", cell["be_tenants"], cell["system"]), {
            "p99_ms": cell.get("p99_ms"),
            "be": cell.get("be_samples_per_s"),
            "ok": cell.get("slo_ok") if cell.get("quota") else None,
            "att": cell.get("attainment"),
        }


def records_batching(doc):
    """batching_sweep: one record per (max batch size, system)."""
    for cell in doc.get("cells", []):
        yield ("batching", cell["max_batch"], cell["system"]), {
            "p99_ms": cell.get("p99_ms"),
            "be": cell.get("be_samples_per_s"),
            "ok": cell.get("slo_ok") if cell.get("system") == "SGDRC" else None,
            "att": cell.get("attainment"),
        }


def records_memory(doc):
    """memory_pressure: one record per (pressure ratio, system), plus a
    cold-start sub-record gating the headline tail. `slo_ok` is gated only
    for the quota-aware stack (the naive FIFO baseline is *meant* to blow
    its SLO under pressure); `cold_start_p99_ms` is null when no request
    hit cold weights — the best outcome, handled by the gate's
    null-propagation rules (a baseline number turning null is data loss
    only for `att`, while p99 comparisons simply skip)."""
    for cell in doc.get("cells", []):
        key = ("memory", cell["pressure"], cell["system"])
        yield key, {
            "p99_ms": cell.get("p99_ms"),
            "be": cell.get("goodput_per_s"),
            "ok": cell.get("slo_ok") if "quota" in cell.get("system", "")
                  else None,
            "att": cell.get("attainment"),
        }
        yield key + ("cold",), {"p99_ms": cell.get("cold_start_p99_ms")}


def records_dag(doc):
    """dag_parallelism: one record per (system, form) where form is the
    model's execution shape — "dag" (explicit kernel_deps, frontier
    multi-launch) or "serialized" (the same kernels as a flat chain).
    Plus one dag-gate record whose `ok` is the bench's headline claim:
    SGDRC's DAG p99 strictly beats serialized at >= attainment."""
    for cell in doc.get("cells", []):
        form = "dag" if cell.get("dag") else "serialized"
        yield ("dag", cell["system"], form), {
            "p99_ms": cell.get("p99_ms"),
            "be": cell.get("be_samples_per_s"),
            "att": cell.get("attainment"),
        }
    gate = doc.get("gate") or {}
    yield ("dag-gate", gate.get("system", "SGDRC")), {"ok": gate.get("ok")}


EXTRACTORS = {
    "fleet_scaling": records_fleet,
    "fig17_end_to_end": records_fig17,
    "scenario_sweep": records_scenarios,
    "vgpu_isolation": records_vgpu,
    "batching_sweep": records_batching,
    "memory_pressure": records_memory,
    "dag_parallelism": records_dag,
}


def extract(path):
    doc = json.loads(path.read_text())
    bench = doc.get("bench")
    if bench not in EXTRACTORS:
        raise SystemExit(f"{path}: unknown bench kind {bench!r}")
    out = {}
    for key, metrics in EXTRACTORS[bench](doc):
        out.setdefault(key, {}).update(
            {k: v for k, v in metrics.items() if v is not None})
    return out


def compare(name, base, cur, p99_tol, be_tol):
    failures = []

    def keystr(key):
        return "/".join(str(k) for k in key)

    for key, bm in sorted(base.items()):
        cm = cur.get(key)
        if cm is None:
            failures.append(f"{name}: {keystr(key)}: present in baseline "
                            "but missing from current output")
            continue
        b99, c99 = bm.get("p99_ms"), cm.get("p99_ms")
        if b99 is not None and c99 is not None and b99 > 0:
            limit = max(b99 * (1.0 + p99_tol), b99 + ABS_P99_FLOOR_MS)
            if c99 > limit:
                failures.append(
                    f"{name}: {keystr(key)}: p99 {c99:.3f} ms vs baseline "
                    f"{b99:.3f} ms (+{100.0 * (c99 / b99 - 1.0):.1f}%, "
                    f"limit +{100.0 * p99_tol:.0f}%)")
        bok, cok = bm.get("ok"), cm.get("ok")
        if bok is True and cok is not True:
            # False is a regression; null/missing means the metric became
            # no-data (zero served requests) — vacuous attainment must
            # fail the gate, not slide through as a pass.
            what = ("false now" if cok is False else
                    "no-data now (zero served requests)")
            failures.append(
                f"{name}: {keystr(key)}: pass/fail metric was true in the "
                f"baseline but is {what}")
        batt, catt = bm.get("att"), cm.get("att")
        if batt is not None and catt is None:
            failures.append(
                f"{name}: {keystr(key)}: attainment was {batt:.3f} in the "
                "baseline but is no-data now (zero served requests)")
        bbe, cbe = bm.get("be"), cm.get("be")
        if bbe is not None and cbe is not None and bbe > ABS_BE_FLOOR:
            limit = bbe * (1.0 - be_tol)
            if cbe < limit:
                failures.append(
                    f"{name}: {keystr(key)}: BE throughput {cbe:.1f}/s vs "
                    f"baseline {bbe:.1f}/s "
                    f"({100.0 * (cbe / bbe - 1.0):.1f}%, limit "
                    f"-{100.0 * be_tol:.0f}%)")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline_dir", type=pathlib.Path)
    ap.add_argument("current_dir", type=pathlib.Path)
    ap.add_argument("--p99-tolerance", type=float, default=0.15,
                    help="max allowed relative p99 growth (default 0.15)")
    ap.add_argument("--be-tolerance", type=float, default=0.10,
                    help="max allowed relative BE-throughput drop "
                         "(default 0.10)")
    args = ap.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        raise SystemExit(f"no BENCH_*.json baselines in {args.baseline_dir}")

    failures = []
    checked = 0
    for bpath in baselines:
        cpath = args.current_dir / bpath.name
        if not cpath.exists():
            failures.append(f"{bpath.name}: no current output at {cpath}")
            continue
        base = extract(bpath)
        cur = extract(cpath)
        failures.extend(
            compare(bpath.name, base, cur, args.p99_tolerance,
                    args.be_tolerance))
        cdoc = json.loads(cpath.read_text())
        validator = VALIDATORS.get(cdoc.get("bench"))
        if validator:
            failures.extend(validator(cdoc, bpath.name))
        checked += len(base)

    if failures:
        print(f"PERF GATE FAILED ({len(failures)} regression(s) across "
              f"{checked} baseline records):")
        for f in failures:
            print(f"  {f}")
        print("\nIf this regression is intentional, refresh the baselines "
              "(see tools/bench_compare.py docstring) or add the "
              "`perf-gate-override` label to the PR.")
        return 1
    print(f"perf gate passed: {checked} baseline records within tolerance "
          f"(p99 +{100.0 * args.p99_tolerance:.0f}%, "
          f"BE -{100.0 * args.be_tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
